// Package scenario generates the fleet's third matrix dimension:
// deterministic, seed-driven families of adversarial inputs that expand
// the six handcrafted attacks (internal/attacks) into thousands of
// variants. EILID's security argument is universal — no control-flow-
// corrupting input may execute attacker code on the protected device —
// so each generated variant pairs an attack mutation with an oracle
// over the protected outcome: the device must never report a
// compromise, and any reset it takes must carry an architecturally
// plausible reason. The unprotected baseline runs the same variants
// purely as a diagnostic (its compromise rate measures how sharp the
// generated inputs are).
//
// Everything is derived from (seed, index) through a splitmix64 stream
// specified in this package, so a batch is byte-identical across runs,
// worker counts and machine recycling, and item i of a batch is the
// same scenario in every batch of the same seed regardless of count —
// which is what makes a single failing NDJSON record reproducible from
// its seed and index alone.
package scenario

import (
	"fmt"
	"strings"

	"eilid/internal/attacks"
	"eilid/internal/casu"
	"eilid/internal/core"
	"eilid/internal/mem"
)

// Victim is one generated firmware build. Families share victims, and
// the fleet prepares each victim exactly once (assemble, instrument,
// predecode, fuse blocks) and pools machines per victim × variant, so a
// thousand-item batch costs a dozen builds, not a thousand.
type Victim struct {
	Name   string
	Source string
}

// Generated is one seed-derived scenario plus its oracle.
type Generated struct {
	// Index is the item's position in the batch; (Seed, Index) fully
	// determine the scenario.
	Index  int
	Family string
	// Victim names the shared build this item runs on.
	Victim string
	// Scenario is the runnable attack variant (attacks.ExecuteOn).
	Scenario attacks.Scenario
	// MinResets is the least number of protected-device resets the
	// oracle demands (0 = a benign completion is acceptable: many
	// variants are deliberate near-misses that fizzle).
	MinResets int
	// AllowedReasons restricts the protected device's first reset
	// reason; empty allows any plausible violation kind.
	AllowedReasons []string
}

// Batch is a generated scenario set.
type Batch struct {
	Seed  uint64
	Count int
	// Victims lists every build the items reference, deduplicated, in
	// first-reference order (deterministic).
	Victims []Victim
	// Items holds the Count generated scenarios in index order.
	Items []Generated
}

// CheckProtected is the oracle for the protected device's outcome: it
// returns "" when the outcome upholds EILID's guarantee and a failure
// description otherwise.
func (g Generated) CheckProtected(o attacks.Outcome) string {
	if o.Compromised {
		return "protected device compromised: attacker code executed"
	}
	if o.Resets < g.MinResets {
		return fmt.Sprintf("protected device reset %d times, oracle demands at least %d", o.Resets, g.MinResets)
	}
	if o.Resets > 0 {
		if o.Reason == "" {
			return "protected device reset without a recorded reason"
		}
		if !PlausibleReason(o.Reason) {
			return fmt.Sprintf("implausible reset reason %q", o.Reason)
		}
		if len(g.AllowedReasons) > 0 {
			ok := false
			for _, want := range g.AllowedReasons {
				if strings.Contains(o.Reason, want) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Sprintf("reset reason %q, oracle allows %v", o.Reason, g.AllowedReasons)
			}
		}
	}
	return ""
}

// plausibleReasons is every violation kind any registered defense can
// report. A reset whose reason falls outside this set means the
// simulated hardware misbehaved, not that an attack variant was
// stopped.
var plausibleReasons = func() map[string]bool {
	out := map[string]bool{}
	for _, k := range casu.ViolationKinds() {
		out[k.String()] = true
	}
	return out
}()

// PlausibleReason reports whether reason is a violation kind some
// hardware monitor can actually produce.
func PlausibleReason(reason string) bool { return plausibleReasons[reason] }

// Check is the per-defense oracle. Every monitored defense must only
// ever reset for a reason it can architecturally emit; on top of that,
// EILID — the paper's defense, whose security argument is universal —
// must uphold the full CheckProtected contract (no compromise, demanded
// resets, allowed reasons). The comparative defenses (shadow, critvar)
// and the baseline are allowed to miss attacks: a compromise there is a
// matrix cell, not a harness failure.
func (g Generated) Check(spec *core.DefenseSpec, o attacks.Outcome) string {
	if spec == nil {
		spec = core.DefenseBaseline
	}
	if spec.New == nil {
		// Unmonitored baseline: purely diagnostic; it cannot even reset.
		if o.Resets > 0 {
			return fmt.Sprintf("baseline device reset %d times with no monitor wired", o.Resets)
		}
		return ""
	}
	if o.Resets > 0 {
		if o.Reason == "" {
			return "monitored device reset without a recorded reason"
		}
		if !spec.EmitsReason(o.Reason) {
			return fmt.Sprintf("reset reason %q is not emittable by defense %q", o.Reason, spec.Name)
		}
	}
	if spec.Name != core.DefenseEILID.Name {
		return ""
	}
	return g.CheckProtected(o)
}

// FamilyNames lists the generator families in their round-robin order:
// item i of any batch belongs to family i mod len(FamilyNames()).
func FamilyNames() []string {
	return []string{
		"uart-fuzz",      // random UART bytes against the overflow victim
		"near-miss",      // RA overwrites just off evil/gadget targets
		"overflow-sweep", // buffer-size × overflow-length parameter sweep
		"poke-addr",      // arbitrary-write address sweep across DMEM
		"poke-value",     // function-pointer value sweep across the address space
		"isr-tamper",     // saved-interrupt-context sweeps × timer periods
		"inject",         // shellcode injection at swept RAM addresses
		"storm",          // resident secure-data violator × reset-storm depths
	}
}

// genBudget bounds every generated run (storm items use their own,
// smaller depth-scaled budgets). Small enough that a fuzzed input which
// wedges the victim polling an empty UART costs ~0.3 ms, large enough
// that every victim's benign path completes with two orders of
// magnitude to spare.
const genBudget = 120_000

// Generate derives a Batch from the seed. Item i depends only on
// (seed, i) — never on count or on other items — so Generate(s, m) is a
// prefix of Generate(s, n) for m < n.
func Generate(seed uint64, count int) *Batch {
	b := &Batch{Seed: seed, Count: count}
	p := derivePools(seed)
	seen := map[string]bool{}
	layout := mem.DefaultLayout()
	fams := FamilyNames()
	for i := 0; i < count; i++ {
		r := itemRNG(seed, i)
		fam := fams[i%len(fams)]
		var g Generated
		var v Victim
		switch fam {
		case "uart-fuzz":
			g, v = genUARTFuzz(r)
		case "near-miss":
			g, v = genNearMiss(r)
		case "overflow-sweep":
			g, v = genOverflowSweep(r, p)
		case "poke-addr":
			g, v = genPokeAddr(r, layout)
		case "poke-value":
			g, v = genPokeValue(r, layout)
		case "isr-tamper":
			g, v = genISRTamper(r, p, layout)
		case "inject":
			g, v = genInject(r, layout)
		default: // "storm"
			g, v = genStorm(r)
		}
		g.Index = i
		g.Family = fam
		g.Victim = v.Name
		g.Scenario.Name = fmt.Sprintf("gen-%05d-%s", i, fam)
		if g.Scenario.Budget == 0 {
			g.Scenario.Budget = genBudget
		}
		if !seen[v.Name] {
			seen[v.Name] = true
			b.Victims = append(b.Victims, v)
		}
		b.Items = append(b.Items, g)
	}
	return b
}

// pools are the per-seed parameter pools shared by every item of a
// batch: victims parameterized from a small pool keep the build count
// (and therefore the fleet's machine pools) bounded no matter how large
// the batch grows.
type pools struct {
	periods []uint16 // timer periods for the ISR victim
	bufs    []int    // stack-buffer sizes for the overflow victim
}

func derivePools(seed uint64) pools {
	r := itemRNG(seed, -1)
	var p pools
	for i := 0; i < 4; i++ {
		p.periods = append(p.periods, uint16(60+r.intn(1940)))
	}
	for i := 0; i < 4; i++ {
		p.bufs = append(p.bufs, 2*(1+r.intn(8))) // 2..16 bytes, word-aligned
	}
	return p
}

// overflowVictim is the 4-byte handcrafted exemplar, shared by the
// families that mutate only the input.
func overflowVictim() Victim {
	return Victim{Name: "overflow", Source: attacks.OverflowVictimSource(4)}
}

// genUARTFuzz feeds random bytes to the overflow victim. About a
// quarter of the items force a huge length byte, driving the copy loop
// deep past the buffer — across the caller frames and, on long runs,
// into the secure-data region.
func genUARTFuzz(r *rng) (Generated, Victim) {
	v := overflowVictim()
	n := r.intn(24)
	data := make([]byte, n)
	for i := range data {
		data[i] = r.byteVal()
	}
	if n > 0 && r.intn(4) == 0 {
		data[0] = byte(192 + r.intn(64))
	}
	return Generated{
		Scenario: attacks.Scenario{
			Property:    "P1",
			Description: "fuzzed UART input against the unchecked-length receive loop",
			Source:      v.Source,
			Payload:     func(map[string]uint16) []byte { return data },
		},
	}, v
}

// genNearMiss overwrites the saved return address with an address just
// off the evil/gadget1 targets (including the exact hit at delta 0 and
// odd, misaligned deltas). On the protected device the backward-edge
// check must fail for every delta: no corrupted RA equals the genuine
// one.
func genNearMiss(r *rng) (Generated, Victim) {
	v := overflowVictim()
	target := "evil"
	if r.intn(2) == 1 {
		target = "gadget1"
	}
	delta := r.intn(13) - 6
	fill := make([]byte, 4)
	for i := range fill {
		fill[i] = r.byteVal()
	}
	return Generated{
		MinResets:      1,
		AllowedReasons: []string{"cfi-check-failed"},
		Scenario: attacks.Scenario{
			Property:    "P1",
			Description: fmt.Sprintf("return-address overwrite to %s%+d", target, delta),
			Source:      v.Source,
			Payload: func(syms map[string]uint16) []byte {
				return attacks.OverflowPayload(fill, uint16(int(syms[target])+delta))
			},
		},
	}, v
}

// genOverflowSweep sweeps the victim's buffer size (from the per-seed
// pool) against overflow lengths around it: short-of-RA, partial-RA and
// past-RA writes. When the length reaches the RA slot the overwrite
// aims at evil; shorter lengths are near-misses that must complete
// benignly.
func genOverflowSweep(r *rng, p pools) (Generated, Victim) {
	buf := p.bufs[r.intn(len(p.bufs))]
	v := Victim{Name: fmt.Sprintf("overflow-b%d", buf), Source: attacks.OverflowVictimSource(buf)}
	l := buf + r.intn(7) - 2 // buf-2 .. buf+4 bytes copied
	if l < 0 {
		l = 0
	}
	fill := make([]byte, l)
	for i := range fill {
		fill[i] = r.byteVal()
	}
	return Generated{
		Scenario: attacks.Scenario{
			Property:    "P1",
			Description: fmt.Sprintf("overflow length %d against a %d-byte buffer", l, buf),
			Source:      v.Source,
			Payload: func(syms map[string]uint16) []byte {
				data := append([]byte{byte(l)}, fill...)
				if l >= buf+2 {
					evil := syms["evil"]
					data[1+buf] = byte(evil)
					data[2+buf] = byte(evil >> 8)
				}
				return data
			},
		},
	}, v
}

// genPokeAddr aims the adversary's arbitrary-write primitive at a swept
// address across the whole data region while the fnptr victim runs:
// most writes land in unused RAM and the run completes benignly; hits
// on the dispatch pointer or the live stack must still never yield a
// compromise.
func genPokeAddr(r *rng, l mem.Layout) (Generated, Victim) {
	v := Victim{Name: "fnptr", Source: attacks.FnptrVictim}
	span := int(l.DMEMEnd-1-l.DMEMStart)/2 + 1
	addr := l.DMEMStart + uint16(2*r.intn(span))
	value := r.word()
	return Generated{
		Scenario: attacks.Scenario{
			Property:    "P3",
			Description: fmt.Sprintf("arbitrary write of 0x%04x at swept address 0x%04x", value, addr),
			Source:      v.Source,
			PokeAt:      "work_iter",
			Poke: func(m *core.Machine, _ map[string]uint16) {
				m.Space.StoreWord(addr, value)
			},
		},
	}, v
}

// genPokeValue sweeps the value written over the fnptr victim's
// dispatch pointer: exact and near-miss code addresses, the legitimate
// handler (which must stay benign), data, peripheral and secure-ROM
// addresses, and raw random words.
func genPokeValue(r *rng, l mem.Layout) (Generated, Victim) {
	v := Victim{Name: "fnptr", Source: attacks.FnptrVictim}
	kind := r.intn(6)
	delta := r.intn(9) - 4
	raw := r.word()
	value := func(m *core.Machine, syms map[string]uint16) uint16 {
		switch kind {
		case 0: // just off (or exactly at) the attacker's destination
			return uint16(int(syms["evil"]) + delta)
		case 1: // the legitimate handler: the poke must be harmless
			return syms["blink"]
		case 2: // a data address: W^X stops any fetch there
			return l.DMEMStart + raw%(l.DMEMEnd-l.DMEMStart)
		case 3: // a code address that is not a function entry
			return l.PMEMStart + (raw % 0x400 &^ 1)
		case 4: // the secure ROM away from its entry point
			return (l.SecureROMStart + raw%(l.SecureROMEnd-l.SecureROMStart)) &^ 1
		default:
			return raw
		}
	}
	return Generated{
		Scenario: attacks.Scenario{
			Property:    "P3",
			Description: fmt.Sprintf("dispatch-pointer overwrite, value class %d", kind),
			Source:      v.Source,
			PokeAt:      "work_iter",
			Poke: func(m *core.Machine, syms map[string]uint16) {
				m.Space.StoreWord(attacks.HandlerAddr, value(m, syms))
			},
		},
	}, v
}

// genISRTamper sweeps the interrupted-context overwrite of the P2
// exemplar across timer periods (from the per-seed pool) and poke
// values: near-evil addresses, data addresses and random words. The RFI
// check compares against the shadow copy, so every mismatch must end in
// a CFI failure; a value that happens to equal the genuine interrupted
// PC is benign.
func genISRTamper(r *rng, p pools, l mem.Layout) (Generated, Victim) {
	period := p.periods[r.intn(len(p.periods))]
	v := Victim{Name: fmt.Sprintf("isr-p%d", period), Source: attacks.ISRVictimSource(period)}
	kind := r.intn(3)
	delta := r.intn(9) - 4
	raw := r.word()
	return Generated{
		AllowedReasons: []string{"cfi-check-failed"},
		Scenario: attacks.Scenario{
			Property:    "P2",
			Description: fmt.Sprintf("saved-context overwrite (class %d) under timer period %d", kind, period),
			Source:      v.Source,
			PokeAt:      "isr_body",
			Poke: func(m *core.Machine, syms map[string]uint16) {
				var value uint16
				switch kind {
				case 0:
					value = uint16(int(syms["evil"]) + delta)
				case 1:
					value = l.DMEMStart + raw%(l.DMEMEnd-l.DMEMStart)
				default:
					value = raw
				}
				m.Space.StoreWord(attacks.ISRSavedRASlot(m), value)
			},
		},
	}, v
}

// genInject writes shellcode at a swept RAM address (occasionally into
// the secure-data region, which the harness write primitive can reach
// even though firmware cannot) and points the jump victim's dispatch
// pointer at it. The fetch from non-executable memory must trip W^X on
// the very first instruction.
func genInject(r *rng, l mem.Layout) (Generated, Victim) {
	v := Victim{Name: "jump", Source: attacks.JumpVictim}
	// Stay clear of the dispatch pointer itself (HandlerAddr) and leave
	// room for the shellcode below the region end.
	lo, hi := uint16(0x0440), l.DMEMEnd-0x1F
	addr := lo + uint16(2*r.intn(int(hi-lo)/2+1))
	if r.intn(5) == 0 {
		addr = l.SecureDataStart + uint16(2*r.intn(0x60))
	}
	return Generated{
		MinResets:      1,
		AllowedReasons: []string{"exec-from-nonexec"},
		Scenario: attacks.Scenario{
			Property:    "W^X",
			Description: fmt.Sprintf("shellcode injected at 0x%04x", addr),
			Source:      v.Source,
			PokeAt:      "dispatch",
			Poke: func(m *core.Machine, _ map[string]uint16) {
				for i, b := range attacks.Shellcode() {
					m.Space.StoreByte(addr+uint16(i), b)
				}
				m.Space.StoreWord(attacks.HandlerAddr, addr)
			},
		},
	}, v
}

// genStorm runs the resident secure-data violator through resets for a
// depth-scaled budget: every boot re-trips the monitor (~33 cycles per
// reset on the instrumented build), so the depth sweeps the observed
// storm length and exercises the bounded reason recording
// (core.MaxResetReasons) at every size.
func genStorm(r *rng) (Generated, Victim) {
	v := Victim{Name: "shadow-storm", Source: attacks.ShadowVictim}
	depth := 1 + r.intn(48)
	return Generated{
		MinResets:      1,
		AllowedReasons: []string{"secure-data-access"},
		Scenario: attacks.Scenario{
			Property:         "SecureData",
			Description:      fmt.Sprintf("reset storm to depth ~%d", depth),
			Source:           v.Source,
			Resident:         true,
			RunThroughResets: true,
			Budget:           uint64(80 + 40*depth),
		},
	}, v
}
